"""Quickstart: build a TBON, run reductions, tear it down.

Creates a balanced 4-ary tree of depth 2 (16 back-ends), runs the
MRNet built-in filters over it, and demonstrates downstream multicast.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology

TAG = FIRST_APPLICATION_TAG


def main() -> None:
    topo = balanced_topology(fanout=4, depth=2)
    print(f"topology: {topo}")
    print(f"  back-ends: {topo.n_backends}, internal: {topo.n_internal}, "
          f"overhead {100 * topo.internal_overhead():.1f}%")

    with Network(topo) as net:
        # --- a sum reduction over every back-end -----------------------
        s_sum = net.new_stream(transform="sum", sync="wait_for_all")

        def send_rank(be):
            be.wait_for_stream(s_sum.stream_id)
            be.send(s_sum.stream_id, TAG, "%d", be.rank)

        net.run_backends(send_rank)
        total = s_sum.recv(timeout=10).values[0]
        print(f"sum of ranks    : {total} (expected {sum(topo.backends)})")
        s_sum.close()

        # --- avg + concat on concurrent overlapping streams -------------
        s_avg = net.new_stream(transform="avg", sync="wait_for_all")
        s_cat = net.new_stream(transform="concat", sync="wait_for_all")

        def send_both(be):
            be.wait_for_stream(s_avg.stream_id)
            be.wait_for_stream(s_cat.stream_id)
            be.send(s_avg.stream_id, TAG, "%f", float(be.rank))
            be.send(s_cat.stream_id, TAG, "%af", np.array([float(be.rank)]))

        net.run_backends(send_both)
        mean = s_avg.recv(timeout=10).values[0]
        gathered = s_cat.recv(timeout=10).values[0]
        print(f"average rank    : {mean:.2f}")
        print(f"concat gathered : {len(gathered)} values")
        s_avg.close()
        s_cat.close()

        # --- downstream multicast ---------------------------------------
        s_cmd = net.new_stream(transform="count", sync="wait_for_all")
        acks = {}

        def worker(be):
            be.wait_for_stream(s_cmd.stream_id)
            pkt = be.recv(timeout=10, stream_id=s_cmd.stream_id)
            acks[be.rank] = pkt.values[0]
            be.send(s_cmd.stream_id, TAG, "%ud", 1)

        threads = net.run_backends(worker, join=False)
        s_cmd.send(TAG, "%s", "hello, leaves")
        n_acked = s_cmd.recv(timeout=10).values[0]
        for t in threads:
            t.join(10)
        print(f"multicast acked : {n_acked}/{topo.n_backends} back-ends")
        s_cmd.close()

    print("network shut down cleanly")


if __name__ == "__main__":
    main()
